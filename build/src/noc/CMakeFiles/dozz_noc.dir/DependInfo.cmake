
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/extended_features.cpp" "src/noc/CMakeFiles/dozz_noc.dir/extended_features.cpp.o" "gcc" "src/noc/CMakeFiles/dozz_noc.dir/extended_features.cpp.o.d"
  "/root/repo/src/noc/network.cpp" "src/noc/CMakeFiles/dozz_noc.dir/network.cpp.o" "gcc" "src/noc/CMakeFiles/dozz_noc.dir/network.cpp.o.d"
  "/root/repo/src/noc/nic.cpp" "src/noc/CMakeFiles/dozz_noc.dir/nic.cpp.o" "gcc" "src/noc/CMakeFiles/dozz_noc.dir/nic.cpp.o.d"
  "/root/repo/src/noc/router.cpp" "src/noc/CMakeFiles/dozz_noc.dir/router.cpp.o" "gcc" "src/noc/CMakeFiles/dozz_noc.dir/router.cpp.o.d"
  "/root/repo/src/noc/stats.cpp" "src/noc/CMakeFiles/dozz_noc.dir/stats.cpp.o" "gcc" "src/noc/CMakeFiles/dozz_noc.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dozz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/regulator/CMakeFiles/dozz_regulator.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dozz_power.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dozz_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/dozz_trafficgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
