# Empty compiler generated dependencies file for dozz_regulator.
# This may be replaced when dependencies are built.
