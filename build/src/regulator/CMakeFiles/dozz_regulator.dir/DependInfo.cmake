
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regulator/simo_converter.cpp" "src/regulator/CMakeFiles/dozz_regulator.dir/simo_converter.cpp.o" "gcc" "src/regulator/CMakeFiles/dozz_regulator.dir/simo_converter.cpp.o.d"
  "/root/repo/src/regulator/simo_ldo.cpp" "src/regulator/CMakeFiles/dozz_regulator.dir/simo_ldo.cpp.o" "gcc" "src/regulator/CMakeFiles/dozz_regulator.dir/simo_ldo.cpp.o.d"
  "/root/repo/src/regulator/transient.cpp" "src/regulator/CMakeFiles/dozz_regulator.dir/transient.cpp.o" "gcc" "src/regulator/CMakeFiles/dozz_regulator.dir/transient.cpp.o.d"
  "/root/repo/src/regulator/vf_mode.cpp" "src/regulator/CMakeFiles/dozz_regulator.dir/vf_mode.cpp.o" "gcc" "src/regulator/CMakeFiles/dozz_regulator.dir/vf_mode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dozz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
