file(REMOVE_RECURSE
  "libdozz_regulator.a"
)
