file(REMOVE_RECURSE
  "CMakeFiles/dozz_regulator.dir/simo_converter.cpp.o"
  "CMakeFiles/dozz_regulator.dir/simo_converter.cpp.o.d"
  "CMakeFiles/dozz_regulator.dir/simo_ldo.cpp.o"
  "CMakeFiles/dozz_regulator.dir/simo_ldo.cpp.o.d"
  "CMakeFiles/dozz_regulator.dir/transient.cpp.o"
  "CMakeFiles/dozz_regulator.dir/transient.cpp.o.d"
  "CMakeFiles/dozz_regulator.dir/vf_mode.cpp.o"
  "CMakeFiles/dozz_regulator.dir/vf_mode.cpp.o.d"
  "libdozz_regulator.a"
  "libdozz_regulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dozz_regulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
