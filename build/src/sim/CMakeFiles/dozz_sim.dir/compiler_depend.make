# Empty compiler generated dependencies file for dozz_sim.
# This may be replaced when dependencies are built.
