
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/batch.cpp" "src/sim/CMakeFiles/dozz_sim.dir/batch.cpp.o" "gcc" "src/sim/CMakeFiles/dozz_sim.dir/batch.cpp.o.d"
  "/root/repo/src/sim/config_file.cpp" "src/sim/CMakeFiles/dozz_sim.dir/config_file.cpp.o" "gcc" "src/sim/CMakeFiles/dozz_sim.dir/config_file.cpp.o.d"
  "/root/repo/src/sim/model_store.cpp" "src/sim/CMakeFiles/dozz_sim.dir/model_store.cpp.o" "gcc" "src/sim/CMakeFiles/dozz_sim.dir/model_store.cpp.o.d"
  "/root/repo/src/sim/oracle.cpp" "src/sim/CMakeFiles/dozz_sim.dir/oracle.cpp.o" "gcc" "src/sim/CMakeFiles/dozz_sim.dir/oracle.cpp.o.d"
  "/root/repo/src/sim/replicate.cpp" "src/sim/CMakeFiles/dozz_sim.dir/replicate.cpp.o" "gcc" "src/sim/CMakeFiles/dozz_sim.dir/replicate.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/sim/CMakeFiles/dozz_sim.dir/report.cpp.o" "gcc" "src/sim/CMakeFiles/dozz_sim.dir/report.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/sim/CMakeFiles/dozz_sim.dir/runner.cpp.o" "gcc" "src/sim/CMakeFiles/dozz_sim.dir/runner.cpp.o.d"
  "/root/repo/src/sim/setup.cpp" "src/sim/CMakeFiles/dozz_sim.dir/setup.cpp.o" "gcc" "src/sim/CMakeFiles/dozz_sim.dir/setup.cpp.o.d"
  "/root/repo/src/sim/training.cpp" "src/sim/CMakeFiles/dozz_sim.dir/training.cpp.o" "gcc" "src/sim/CMakeFiles/dozz_sim.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dozz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dozz_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dozz_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/dozz_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dozz_power.dir/DependInfo.cmake"
  "/root/repo/build/src/regulator/CMakeFiles/dozz_regulator.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dozz_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dozz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
