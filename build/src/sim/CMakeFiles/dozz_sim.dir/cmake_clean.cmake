file(REMOVE_RECURSE
  "CMakeFiles/dozz_sim.dir/batch.cpp.o"
  "CMakeFiles/dozz_sim.dir/batch.cpp.o.d"
  "CMakeFiles/dozz_sim.dir/config_file.cpp.o"
  "CMakeFiles/dozz_sim.dir/config_file.cpp.o.d"
  "CMakeFiles/dozz_sim.dir/model_store.cpp.o"
  "CMakeFiles/dozz_sim.dir/model_store.cpp.o.d"
  "CMakeFiles/dozz_sim.dir/oracle.cpp.o"
  "CMakeFiles/dozz_sim.dir/oracle.cpp.o.d"
  "CMakeFiles/dozz_sim.dir/replicate.cpp.o"
  "CMakeFiles/dozz_sim.dir/replicate.cpp.o.d"
  "CMakeFiles/dozz_sim.dir/report.cpp.o"
  "CMakeFiles/dozz_sim.dir/report.cpp.o.d"
  "CMakeFiles/dozz_sim.dir/runner.cpp.o"
  "CMakeFiles/dozz_sim.dir/runner.cpp.o.d"
  "CMakeFiles/dozz_sim.dir/setup.cpp.o"
  "CMakeFiles/dozz_sim.dir/setup.cpp.o.d"
  "CMakeFiles/dozz_sim.dir/training.cpp.o"
  "CMakeFiles/dozz_sim.dir/training.cpp.o.d"
  "libdozz_sim.a"
  "libdozz_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dozz_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
