file(REMOVE_RECURSE
  "libdozz_sim.a"
)
