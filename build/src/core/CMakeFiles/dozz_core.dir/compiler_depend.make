# Empty compiler generated dependencies file for dozz_core.
# This may be replaced when dependencies are built.
