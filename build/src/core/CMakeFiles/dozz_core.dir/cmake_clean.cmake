file(REMOVE_RECURSE
  "CMakeFiles/dozz_core.dir/baselines.cpp.o"
  "CMakeFiles/dozz_core.dir/baselines.cpp.o.d"
  "CMakeFiles/dozz_core.dir/mode_select.cpp.o"
  "CMakeFiles/dozz_core.dir/mode_select.cpp.o.d"
  "CMakeFiles/dozz_core.dir/policies.cpp.o"
  "CMakeFiles/dozz_core.dir/policies.cpp.o.d"
  "libdozz_core.a"
  "libdozz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dozz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
