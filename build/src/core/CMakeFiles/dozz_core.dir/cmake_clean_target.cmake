file(REMOVE_RECURSE
  "libdozz_core.a"
)
