
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trafficgen/benchmarks.cpp" "src/trafficgen/CMakeFiles/dozz_trafficgen.dir/benchmarks.cpp.o" "gcc" "src/trafficgen/CMakeFiles/dozz_trafficgen.dir/benchmarks.cpp.o.d"
  "/root/repo/src/trafficgen/fullsystem.cpp" "src/trafficgen/CMakeFiles/dozz_trafficgen.dir/fullsystem.cpp.o" "gcc" "src/trafficgen/CMakeFiles/dozz_trafficgen.dir/fullsystem.cpp.o.d"
  "/root/repo/src/trafficgen/patterns.cpp" "src/trafficgen/CMakeFiles/dozz_trafficgen.dir/patterns.cpp.o" "gcc" "src/trafficgen/CMakeFiles/dozz_trafficgen.dir/patterns.cpp.o.d"
  "/root/repo/src/trafficgen/trace.cpp" "src/trafficgen/CMakeFiles/dozz_trafficgen.dir/trace.cpp.o" "gcc" "src/trafficgen/CMakeFiles/dozz_trafficgen.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dozz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dozz_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
