file(REMOVE_RECURSE
  "libdozz_trafficgen.a"
)
