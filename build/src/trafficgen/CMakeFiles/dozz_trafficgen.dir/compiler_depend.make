# Empty compiler generated dependencies file for dozz_trafficgen.
# This may be replaced when dependencies are built.
