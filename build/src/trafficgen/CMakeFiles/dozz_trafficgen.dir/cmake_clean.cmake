file(REMOVE_RECURSE
  "CMakeFiles/dozz_trafficgen.dir/benchmarks.cpp.o"
  "CMakeFiles/dozz_trafficgen.dir/benchmarks.cpp.o.d"
  "CMakeFiles/dozz_trafficgen.dir/fullsystem.cpp.o"
  "CMakeFiles/dozz_trafficgen.dir/fullsystem.cpp.o.d"
  "CMakeFiles/dozz_trafficgen.dir/patterns.cpp.o"
  "CMakeFiles/dozz_trafficgen.dir/patterns.cpp.o.d"
  "CMakeFiles/dozz_trafficgen.dir/trace.cpp.o"
  "CMakeFiles/dozz_trafficgen.dir/trace.cpp.o.d"
  "libdozz_trafficgen.a"
  "libdozz_trafficgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dozz_trafficgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
