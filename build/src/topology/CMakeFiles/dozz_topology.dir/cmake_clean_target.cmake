file(REMOVE_RECURSE
  "libdozz_topology.a"
)
