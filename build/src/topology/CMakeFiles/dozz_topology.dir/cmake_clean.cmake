file(REMOVE_RECURSE
  "CMakeFiles/dozz_topology.dir/topology.cpp.o"
  "CMakeFiles/dozz_topology.dir/topology.cpp.o.d"
  "libdozz_topology.a"
  "libdozz_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dozz_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
