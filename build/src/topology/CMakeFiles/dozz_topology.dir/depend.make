# Empty dependencies file for dozz_topology.
# This may be replaced when dependencies are built.
