file(REMOVE_RECURSE
  "CMakeFiles/dozz_power.dir/dsent_model.cpp.o"
  "CMakeFiles/dozz_power.dir/dsent_model.cpp.o.d"
  "CMakeFiles/dozz_power.dir/energy_accountant.cpp.o"
  "CMakeFiles/dozz_power.dir/energy_accountant.cpp.o.d"
  "CMakeFiles/dozz_power.dir/power_model.cpp.o"
  "CMakeFiles/dozz_power.dir/power_model.cpp.o.d"
  "libdozz_power.a"
  "libdozz_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dozz_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
