# Empty dependencies file for dozz_power.
# This may be replaced when dependencies are built.
