file(REMOVE_RECURSE
  "libdozz_power.a"
)
