file(REMOVE_RECURSE
  "libdozz_common.a"
)
