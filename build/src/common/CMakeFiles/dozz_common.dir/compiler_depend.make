# Empty compiler generated dependencies file for dozz_common.
# This may be replaced when dependencies are built.
