file(REMOVE_RECURSE
  "CMakeFiles/dozz_common.dir/csv.cpp.o"
  "CMakeFiles/dozz_common.dir/csv.cpp.o.d"
  "CMakeFiles/dozz_common.dir/log.cpp.o"
  "CMakeFiles/dozz_common.dir/log.cpp.o.d"
  "CMakeFiles/dozz_common.dir/rng.cpp.o"
  "CMakeFiles/dozz_common.dir/rng.cpp.o.d"
  "CMakeFiles/dozz_common.dir/stats.cpp.o"
  "CMakeFiles/dozz_common.dir/stats.cpp.o.d"
  "CMakeFiles/dozz_common.dir/table.cpp.o"
  "CMakeFiles/dozz_common.dir/table.cpp.o.d"
  "libdozz_common.a"
  "libdozz_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dozz_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
