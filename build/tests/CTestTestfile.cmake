# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dozz_tests[1]_include.cmake")
add_test(tsan_smoke "/root/repo/build/tests/dozz_tests" "--gtest_filter=BatchDeterminism.*:ThreadPool.*")
set_tests_properties(tsan_smoke PROPERTIES  LABELS "tsan_smoke" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;46;add_test;/root/repo/tests/CMakeLists.txt;0;")
