# Empty dependencies file for dozz_tests.
# This may be replaced when dependencies are built.
