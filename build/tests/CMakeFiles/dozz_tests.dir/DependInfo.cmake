
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/dozz_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_batch.cpp" "tests/CMakeFiles/dozz_tests.dir/test_batch.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_batch.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/dozz_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/dozz_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_config_sweep.cpp" "tests/CMakeFiles/dozz_tests.dir/test_config_sweep.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_config_sweep.cpp.o.d"
  "/root/repo/tests/test_converter.cpp" "tests/CMakeFiles/dozz_tests.dir/test_converter.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_converter.cpp.o.d"
  "/root/repo/tests/test_dsent.cpp" "tests/CMakeFiles/dozz_tests.dir/test_dsent.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_dsent.cpp.o.d"
  "/root/repo/tests/test_extended.cpp" "tests/CMakeFiles/dozz_tests.dir/test_extended.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_extended.cpp.o.d"
  "/root/repo/tests/test_fullsystem.cpp" "tests/CMakeFiles/dozz_tests.dir/test_fullsystem.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_fullsystem.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/dozz_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/dozz_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kernel_equivalence.cpp" "tests/CMakeFiles/dozz_tests.dir/test_kernel_equivalence.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_kernel_equivalence.cpp.o.d"
  "/root/repo/tests/test_ml.cpp" "tests/CMakeFiles/dozz_tests.dir/test_ml.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_ml.cpp.o.d"
  "/root/repo/tests/test_mlp.cpp" "tests/CMakeFiles/dozz_tests.dir/test_mlp.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_mlp.cpp.o.d"
  "/root/repo/tests/test_model_store.cpp" "tests/CMakeFiles/dozz_tests.dir/test_model_store.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_model_store.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/dozz_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_nic.cpp" "tests/CMakeFiles/dozz_tests.dir/test_nic.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_nic.cpp.o.d"
  "/root/repo/tests/test_noc_units.cpp" "tests/CMakeFiles/dozz_tests.dir/test_noc_units.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_noc_units.cpp.o.d"
  "/root/repo/tests/test_observer.cpp" "tests/CMakeFiles/dozz_tests.dir/test_observer.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_observer.cpp.o.d"
  "/root/repo/tests/test_policies.cpp" "tests/CMakeFiles/dozz_tests.dir/test_policies.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_policies.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/dozz_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/dozz_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_regulator.cpp" "tests/CMakeFiles/dozz_tests.dir/test_regulator.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_regulator.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/dozz_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_router.cpp" "tests/CMakeFiles/dozz_tests.dir/test_router.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_router.cpp.o.d"
  "/root/repo/tests/test_routing_algos.cpp" "tests/CMakeFiles/dozz_tests.dir/test_routing_algos.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_routing_algos.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/dozz_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_torus.cpp" "tests/CMakeFiles/dozz_tests.dir/test_torus.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_torus.cpp.o.d"
  "/root/repo/tests/test_trafficgen.cpp" "tests/CMakeFiles/dozz_tests.dir/test_trafficgen.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_trafficgen.cpp.o.d"
  "/root/repo/tests/test_training.cpp" "tests/CMakeFiles/dozz_tests.dir/test_training.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_training.cpp.o.d"
  "/root/repo/tests/test_wormhole.cpp" "tests/CMakeFiles/dozz_tests.dir/test_wormhole.cpp.o" "gcc" "tests/CMakeFiles/dozz_tests.dir/test_wormhole.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dozz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dozz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dozz_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dozz_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dozz_power.dir/DependInfo.cmake"
  "/root/repo/build/src/regulator/CMakeFiles/dozz_regulator.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dozz_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/dozz_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dozz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
